package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunScoreInline(t *testing.T) {
	if err := run([]string{"-a-text", "ABCABBA", "-b-text", "CBABAC", "score"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunFiles(t *testing.T) {
	dir := t.TempDir()
	aPath := filepath.Join(dir, "a.txt")
	bPath := filepath.Join(dir, "b.txt")
	if err := os.WriteFile(aPath, []byte("GATTACA\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bPath, []byte("TACGATTACA\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{aPath, bPath, "score"},
		{"-alg", "hybrid", "-workers", "2", aPath, bPath, "score"},
		{aPath, bPath, "windows", "-width", "5", "-top", "2"},
		{aPath, bPath, "query", "-kind", "substring-string", "-from", "1", "-to", "6"},
		{aPath, bPath, "query", "-kind", "prefix-suffix", "-from", "3", "-to", "2"},
	} {
		if err := run(args, io.Discard); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
}

func TestRunFASTA(t *testing.T) {
	dir := t.TempDir()
	fa := filepath.Join(dir, "x.fa")
	if err := os.WriteFile(fa, []byte(">one\nACGTACGT\n>two\nGGGG\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fasta", fa, fa, "score"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                               // no inputs
		{"-a-text", "x"},                 // missing b
		{"-a-text", "x", "-b-text", "y"}, // missing subcommand
		{"-a-text", "x", "-b-text", "y", "bogus"},                  // unknown subcommand
		{"-alg", "nope", "-a-text", "x", "-b-text", "y", "score"},  // unknown algorithm
		{"-a-text", "x", "-b-text", "y", "windows", "-width", "9"}, // width too large
		{"-a-text", "x", "-b-text", "y", "query", "-kind", "nope"}, // unknown kind
		{"/nonexistent/a", "/nonexistent/b", "score"},              // unreadable file
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunEditMode(t *testing.T) {
	for _, args := range [][]string{
		{"-edit", "-a-text", "kitten", "-b-text", "sitting", "score"},
		{"-edit", "-a-text", "kitten", "-b-text", "the sitting cat", "windows", "-top", "2"},
		{"-edit", "-a-text", "kitten", "-b-text", "sitting", "query", "-kind", "string-substring", "-from", "0", "-to", "6"},
		{"-edit", "-a-text", "kitten", "-b-text", "sitting", "query", "-kind", "suffix-prefix", "-from", "1", "-to", "4"},
	} {
		if err := run(args, io.Discard); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
	for _, args := range [][]string{
		{"-edit", "-a-text", "x", "-b-text", "y", "bogus"},
		{"-edit", "-a-text", "x", "-b-text", "y", "windows", "-width", "5"},
		{"-edit", "-a-text", "x", "-b-text", "y", "query", "-kind", "nope"},
	} {
		if err := run(args, io.Discard); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}

// update regenerates the golden files under testdata instead of
// comparing against them: go test ./cmd/semilocal -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenCompare pins got against testdata/<name>.golden, rewriting the
// file under -update.
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output deviates from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGolden pins the exact CLI output of every subcommand and mode so
// future refactors of the query or serving layers cannot silently
// change user-visible behavior. Every invocation here is fully
// deterministic: inline inputs, sequential workers.
func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"score", []string{"-a-text", "ABCABBA", "-b-text", "CBABAC", "score"}},
		{"score-rowmajor", []string{"-alg", "rowmajor", "-a-text", "GATTACA", "-b-text", "TACGATTACA", "score"}},
		{"windows", []string{"-a-text", "GATTACA", "-b-text", "TACGATTACA", "windows", "-width", "5", "-top", "3"}},
		{"query-string-substring", []string{"-a-text", "GATTACA", "-b-text", "TACGATTACA", "query", "-kind", "string-substring", "-from", "2", "-to", "9"}},
		{"query-substring-string", []string{"-a-text", "GATTACA", "-b-text", "TACGATTACA", "query", "-kind", "substring-string", "-from", "1", "-to", "6"}},
		{"query-suffix-prefix", []string{"-a-text", "GATTACA", "-b-text", "TACGATTACA", "query", "-kind", "suffix-prefix", "-from", "2", "-to", "8"}},
		{"query-prefix-suffix", []string{"-a-text", "GATTACA", "-b-text", "TACGATTACA", "query", "-kind", "prefix-suffix", "-from", "3", "-to", "2"}},
		{"edit-score", []string{"-edit", "-a-text", "kitten", "-b-text", "sitting", "score"}},
		{"edit-windows", []string{"-edit", "-a-text", "kitten", "-b-text", "the sitting cat", "windows", "-top", "2"}},
		{"edit-query", []string{"-edit", "-a-text", "kitten", "-b-text", "sitting", "query", "-kind", "string-substring", "-from", "0", "-to", "6"}},
		{"score-banded", []string{"-banded", "-a-text", "ABCABBA", "-b-text", "CBABAC", "score"}},
		// A one-edit budget the inputs exceed: the CLI announces the
		// fallback and answers through the kernel.
		{"score-banded-fallback", []string{"-banded", "-band-max-k", "1", "-a-text", "ABCABBA", "-b-text", "CBABAC", "score"}},
		{"edit-score-banded", []string{"-banded", "-edit", "-a-text", "kitten", "-b-text", "sitting", "score"}},
		{"edit-score-banded-fallback", []string{"-banded", "-edit", "-band-max-k", "1", "-a-text", "kitten", "-b-text", "sitting", "score"}},
		// The engine dispatcher: answers must match serve-batch.golden
		// line for line; only the counter line gains the banded split.
		{"serve-batch-banded", []string{"-serve-batch", filepath.Join("testdata", "batch.txt"), "-banded"}},
		{"serve-batch", []string{"-serve-batch", filepath.Join("testdata", "batch.txt")}},
		// Admission at batch arrival with one sequential worker: the
		// first 3 requests are admitted, requests 3..9 shed — exactly,
		// run after run.
		{"serve-batch-shed", []string{"-serve-batch", filepath.Join("testdata", "batch.txt"), "-max-queue", "3"}},
		// A chaos error rule with a 2-firing budget plus 3 solve
		// attempts: the first solve fails twice and is retried to
		// success; answers match the fault-free golden.
		{"serve-batch-chaos", []string{"-serve-batch", filepath.Join("testdata", "batch.txt"),
			"-chaos", "solve:error:1000:0:2", "-retries", "3", "-retry-backoff", "1ms"}},
		// Streaming mode: the op script appends chunks, slides the
		// window and answers queries online; every count (generation,
		// window, leaves, compositions) is deterministic.
		{"stream", []string{"-a-text", "GATTACA", "-stream", filepath.Join("testdata", "stream.txt")}},
		// A stream fault rule with a 2-firing budget plus 3 attempts:
		// the first append fails twice, retries to success, and every
		// answer matches the fault-free stream golden.
		{"stream-chaos", []string{"-a-text", "GATTACA", "-stream", filepath.Join("testdata", "stream.txt"),
			"-chaos", "stream:error:1000:0:2", "-retries", "3", "-retry-backoff", "1ms"}},
		// Group mode: `pattern` declarations switch the op script to one
		// multi-pattern session group; appends and slides mutate every
		// spine in lockstep and the summary accounts the shared leaf
		// solves (the duplicate GATTACA shares a whole spine).
		{"stream-group", []string{"-a-text", "GATTACA", "-stream", filepath.Join("testdata", "stream-group.txt")}},
		// Faults hit whole group mutations: two injected errors retry to
		// success and every answer matches the fault-free group golden.
		{"stream-group-chaos", []string{"-a-text", "GATTACA", "-stream", filepath.Join("testdata", "stream-group.txt"),
			"-chaos", "stream:error:1000:0:2", "-retries", "3", "-retry-backoff", "1ms"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tc.args, &buf); err != nil {
				t.Fatalf("run(%v): %v", tc.args, err)
			}
			goldenCompare(t, tc.name, buf.String())
		})
	}
}

// TestServeBatchParallelMatchesSequential re-runs the batch file with a
// parallel engine and checks that every answer line matches the
// sequential golden run (the trailing counter line is allowed to differ
// in hit/dedup split, but the sum of solves must not change).
func TestServeBatchParallelMatchesSequential(t *testing.T) {
	batch := filepath.Join("testdata", "batch.txt")
	var seq, par bytes.Buffer
	if err := run([]string{"-serve-batch", batch}, &seq); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-serve-batch", batch, "-workers", "4"}, &par); err != nil {
		t.Fatal(err)
	}
	seqLines := strings.Split(seq.String(), "\n")
	parLines := strings.Split(par.String(), "\n")
	if len(seqLines) != len(parLines) {
		t.Fatalf("line count differs: %d vs %d", len(seqLines), len(parLines))
	}
	for i := range seqLines {
		if strings.HasPrefix(seqLines[i], "# engine:") {
			continue
		}
		if seqLines[i] != parLines[i] {
			t.Errorf("line %d differs:\nseq: %s\npar: %s", i, seqLines[i], parLines[i])
		}
	}
}

// TestServeBatchErrors covers the batch-mode error paths: missing file,
// malformed lines, and unknown kinds.
func TestServeBatchErrors(t *testing.T) {
	writeBatch := func(content string) string {
		path := filepath.Join(t.TempDir(), "batch.txt")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := map[string]string{
		"too few fields": "ABC\n",
		"unknown kind":   "ABC CBA frobnicate\n",
		"missing args":   "ABC CBA string-substring 1\n",
		"non-numeric":    "ABC CBA string-substring one 5\n",
		"extra args":     "ABC CBA score 3\n",
	}
	for name, content := range cases {
		if err := run([]string{"-serve-batch", writeBatch(content)}, io.Discard); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := run([]string{"-serve-batch", "/nonexistent/batch.txt"}, io.Discard); err == nil {
		t.Error("missing batch file accepted")
	}
	// Out-of-range query arguments are per-request errors, not run errors.
	var buf bytes.Buffer
	if err := run([]string{"-serve-batch", writeBatch("ABC CBA string-substring 0 99\n")}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "error:") {
		t.Errorf("out-of-range request did not surface an error line:\n%s", buf.String())
	}
}

// TestHardeningFlagsRequireServeBatch: the serving knobs are engine
// configuration; outside -serve-batch they are a usage error, not a
// silent no-op.
func TestHardeningFlagsRequireServeBatch(t *testing.T) {
	base := []string{"-a-text", "ABC", "-b-text", "CBA"}
	for _, extra := range [][]string{
		{"-max-queue", "3"},
		{"-retries", "2"},
		{"-retry-backoff", "1ms"},
		{"-deadline", "1s"},
		{"-degrade-below", "1ms"},
		{"-chaos", "solve:latency:10:1ms"},
	} {
		args := append(append([]string{}, extra...), append(base, "score")...)
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want 'requires -serve-batch' error", args)
		}
	}
	// A malformed chaos spec is rejected before the batch file is read.
	if err := run([]string{"-serve-batch", "/nonexistent", "-chaos", "bogus"}, io.Discard); err == nil {
		t.Error("malformed -chaos spec accepted")
	}
}

// TestFlagValidationTable drives the consolidated cross-flag rule
// table: every mutual exclusion and dependency must reject with a
// message naming the offending flag, before any input file is touched
// (the batch/stream paths here point at nonexistent files on purpose).
func TestFlagValidationTable(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"stream+serve-batch", []string{"-serve-batch", "/nope", "-stream", "/nope"}, "-stream cannot be combined with -serve-batch"},
		{"stream+edit", []string{"-edit", "-a-text", "AB", "-stream", "/nope"}, "-stream cannot be combined with -edit"},
		{"stream+banded", []string{"-banded", "-a-text", "AB", "-stream", "/nope"}, "-stream cannot be combined with -banded"},
		{"stream+max-queue", []string{"-max-queue", "3", "-a-text", "AB", "-stream", "/nope"}, "cannot be combined"},
		{"trace-stages+edit", []string{"-trace-stages", "-edit", "-a-text", "AB", "-b-text", "BA", "score"}, "-trace-stages cannot be combined with -edit"},
		{"band-max-k alone", []string{"-band-max-k", "5", "-a-text", "AB", "-b-text", "BA", "score"}, "-band-max-k requires -banded"},
		{"max-queue alone", []string{"-max-queue", "3", "-a-text", "AB", "-b-text", "BA", "score"}, "-max-queue requires -serve-batch"},
		{"metrics alone", []string{"-metrics", "-", "-a-text", "AB", "-b-text", "BA", "score"}, "-metrics requires -serve-batch or -stream"},
		{"retries alone", []string{"-retries", "2", "-a-text", "AB", "-b-text", "BA", "score"}, "requires -serve-batch or -stream"},
		{"chaos alone", []string{"-chaos", "solve:latency:10:1ms", "-a-text", "AB", "-b-text", "BA", "score"}, "requires -serve-batch or -stream"},
		{"store-dir alone", []string{"-store-dir", "/nope", "-a-text", "AB", "-b-text", "BA", "score"}, "-store-dir requires -serve-batch"},
		{"store-dir+stream", []string{"-store-dir", "/nope", "-a-text", "AB", "-stream", "/nope"}, "-store-dir requires -serve-batch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("run(%v) = %q, want it to contain %q", tc.args, err, tc.wantErr)
			}
		})
	}
	// Valid combinations the table must NOT reject.
	for _, args := range [][]string{
		{"-banded", "-a-text", "ABCABBA", "-b-text", "CBABAC", "score"},
		{"-banded", "-band-max-k", "64", "-a-text", "ABCABBA", "-b-text", "CBABAC", "score"},
		{"-banded", "-edit", "-a-text", "kitten", "-b-text", "sitting", "score"},
		{"-serve-batch", filepath.Join("testdata", "batch.txt"), "-banded", "-band-max-k", "16"},
	} {
		if err := run(args, io.Discard); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	// -banded is distance-only: the semi-local subcommands need the
	// kernel and must reject it at dispatch.
	for _, sub := range [][]string{
		{"-banded", "-a-text", "GATTACA", "-b-text", "TACGATTACA", "windows", "-width", "5"},
		{"-banded", "-a-text", "GATTACA", "-b-text", "TACGATTACA", "query", "-kind", "string-substring"},
	} {
		err := run(sub, io.Discard)
		if err == nil || !strings.Contains(err.Error(), "-banded supports only the score subcommand") {
			t.Errorf("run(%v) = %v, want banded-subcommand error", sub, err)
		}
	}
}

// TestServeBatchBandedMatchesPlain is the CLI-level metamorphic check:
// enabling the dispatcher changes routing and counters, never answers.
func TestServeBatchBandedMatchesPlain(t *testing.T) {
	batch := filepath.Join("testdata", "batch.txt")
	var plain, banded bytes.Buffer
	if err := run([]string{"-serve-batch", batch}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-serve-batch", batch, "-banded"}, &banded); err != nil {
		t.Fatal(err)
	}
	pl := strings.Split(plain.String(), "\n")
	bl := strings.Split(banded.String(), "\n")
	if len(pl) != len(bl) {
		t.Fatalf("line count differs: %d vs %d", len(pl), len(bl))
	}
	for i := range pl {
		if strings.HasPrefix(pl[i], "# engine:") {
			if !strings.Contains(bl[i], "requests_banded=") {
				t.Errorf("banded run's counter line lacks requests_banded: %s", bl[i])
			}
			continue
		}
		if pl[i] != bl[i] {
			t.Errorf("line %d differs under -banded:\nplain:  %s\nbanded: %s", i, pl[i], bl[i])
		}
	}
}

// TestStreamModeErrors covers the -stream mode's usage and script
// error paths.
func TestStreamModeErrors(t *testing.T) {
	writeScript := func(content string) string {
		path := filepath.Join(t.TempDir(), "ops.txt")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	ok := writeScript("append AB\nscore\n")
	cases := map[string][]string{
		"with -serve-batch": {"-serve-batch", "x.txt", "-stream", ok},
		"with -edit":        {"-edit", "-a-text", "AB", "-stream", ok},
		"with -max-queue":   {"-max-queue", "3", "-a-text", "AB", "-stream", ok},
		"with -b-text":      {"-a-text", "AB", "-b-text", "CD", "-stream", ok},
		"no pattern":        {"-stream", ok},
		"extra args":        {"-a-text", "AB", "-stream", ok, "leftover"},
		"missing script":    {"-a-text", "AB", "-stream", "/nonexistent/ops.txt"},
		"bad append arity":  {"-a-text", "AB", "-stream", writeScript("append\n")},
		"bad slide arg":     {"-a-text", "AB", "-stream", writeScript("slide two\n")},
		"unknown op":        {"-a-text", "AB", "-stream", writeScript("frobnicate 1\n")},
		"bad query arity":   {"-a-text", "AB", "-stream", writeScript("string-substring 1\n")},
		"non-numeric query": {"-a-text", "AB", "-stream", writeScript("windows wide\n")},
		// Group-mode script errors: declarations must lead the script,
		// carry exactly one pattern, and query indices must resolve.
		"pattern after op":     {"-a-text", "AB", "-stream", writeScript("append AB\npattern CD\n")},
		"bad pattern arity":    {"-a-text", "AB", "-stream", writeScript("pattern\n")},
		"pattern out of range": {"-a-text", "AB", "-stream", writeScript("pattern CD\n@5 score\n")},
		"bad pattern index":    {"-a-text", "AB", "-stream", writeScript("pattern CD\n@x score\n")},
		"index without kind":   {"-a-text", "AB", "-stream", writeScript("pattern CD\n@1\n")},
	}
	for name, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("%s: run(%v) succeeded, want error", name, args)
		}
	}
	// Mutation errors are per-op output lines, not run errors: sliding
	// more chunks than the window holds reports and continues.
	var buf bytes.Buffer
	if err := run([]string{"-a-text", "AB", "-stream", writeScript("append AB\nslide 5\nscore\n")}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "slide: error:") || !strings.Contains(buf.String(), "#2 score = 2") {
		t.Errorf("failed slide must report and keep serving:\n%s", buf.String())
	}
}

// TestStreamModeMatchesBatchEngine replays the stream script and
// checks the final window's score against a direct solve — the CLI
// path end to end, not just the library.
func TestStreamModeMatchesBatchEngine(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-a-text", "GATTACA", "-stream", filepath.Join("testdata", "stream.txt")}, &buf); err != nil {
		t.Fatal(err)
	}
	// Final window after the script: GATT+ACAGATTACA, slide 1 → ACAGATTACA, +TACA.
	var direct bytes.Buffer
	if err := run([]string{"-a-text", "GATTACA", "-b-text", "ACAGATTACATACA", "score"}, &direct); err != nil {
		t.Fatal(err)
	}
	want := strings.TrimPrefix(strings.Split(direct.String(), " ")[2], "")
	if !strings.Contains(buf.String(), "#9 score = "+want) {
		t.Errorf("stream's final score must match the direct solve (want %s):\n%s", want, buf.String())
	}
}

// TestServeBatchDeadlineAndDegrade smoke-tests the remaining batch
// knobs end to end: a generous deadline with degradation on answers
// identically to the plain run.
func TestServeBatchDeadlineAndDegrade(t *testing.T) {
	batch := filepath.Join("testdata", "batch.txt")
	var plain, hardened bytes.Buffer
	if err := run([]string{"-serve-batch", batch}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-serve-batch", batch,
		"-alg", "grid", "-deadline", "10s", "-degrade-below", "1h"}, &hardened); err != nil {
		t.Fatal(err)
	}
	pl := strings.Split(plain.String(), "\n")
	hl := strings.Split(hardened.String(), "\n")
	if len(pl) != len(hl) {
		t.Fatalf("line count differs: %d vs %d", len(pl), len(hl))
	}
	degradedSeen := false
	for i := range pl {
		if strings.HasPrefix(pl[i], "# engine:") {
			// Every valid request (9 of 10) degrades; the invalid one
			// fails validation before the degradation check.
			degradedSeen = strings.Contains(hl[i], "requests_degraded=9")
			continue
		}
		if pl[i] != hl[i] {
			t.Errorf("line %d differs under degradation:\nplain:    %s\nhardened: %s", i, pl[i], hl[i])
		}
	}
	if !degradedSeen {
		t.Errorf("degraded run did not report requests_degraded=2:\n%s", hardened.String())
	}
}

// TestServeBatchStoreWarmRestart is the end-to-end restart story: two
// CLI invocations share a -store-dir; the second one answers every
// request identically to a store-less run while reporting store hits —
// the kernels came off disk, not from fresh solves.
func TestServeBatchStoreWarmRestart(t *testing.T) {
	batch := filepath.Join("testdata", "batch.txt")
	dir := t.TempDir()
	var plain, cold, warm bytes.Buffer
	if err := run([]string{"-serve-batch", batch}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-serve-batch", batch, "-store-dir", dir}, &cold); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-serve-batch", batch, "-store-dir", dir}, &warm); err != nil {
		t.Fatal(err)
	}
	pl := strings.Split(plain.String(), "\n")
	for name, other := range map[string][]string{
		"cold": strings.Split(cold.String(), "\n"),
		"warm": strings.Split(warm.String(), "\n"),
	} {
		if len(pl) != len(other) {
			t.Fatalf("%s run line count differs: %d vs %d", name, len(pl), len(other))
		}
		for i := range pl {
			if strings.HasPrefix(pl[i], "# engine:") {
				continue // counters legitimately differ with a store
			}
			if pl[i] != other[i] {
				t.Errorf("%s run line %d differs:\nplain: %s\nstore: %s", name, i, pl[i], other[i])
			}
		}
	}
	// batch.txt crosses 2 solvable unique pairs (the out-of-range
	// request fails validation before any solve); the warm run must
	// read both back instead of solving.
	warmStats := ""
	for _, line := range strings.Split(warm.String(), "\n") {
		if strings.HasPrefix(line, "# engine:") {
			warmStats = line
		}
	}
	if !strings.Contains(warmStats, "store_hits=2") || !strings.Contains(warmStats, "store_misses=0") {
		t.Errorf("warm run did not serve from the store: %s", warmStats)
	}
	coldStats := ""
	for _, line := range strings.Split(cold.String(), "\n") {
		if strings.HasPrefix(line, "# engine:") {
			coldStats = line
		}
	}
	if !strings.Contains(coldStats, "store_hits=0") || !strings.Contains(coldStats, "store_misses=2") {
		t.Errorf("cold run counters off: %s", coldStats)
	}
}
