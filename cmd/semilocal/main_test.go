package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunScoreInline(t *testing.T) {
	if err := run([]string{"-a-text", "ABCABBA", "-b-text", "CBABAC", "score"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFiles(t *testing.T) {
	dir := t.TempDir()
	aPath := filepath.Join(dir, "a.txt")
	bPath := filepath.Join(dir, "b.txt")
	if err := os.WriteFile(aPath, []byte("GATTACA\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bPath, []byte("TACGATTACA\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{aPath, bPath, "score"},
		{"-alg", "hybrid", "-workers", "2", aPath, bPath, "score"},
		{aPath, bPath, "windows", "-width", "5", "-top", "2"},
		{aPath, bPath, "query", "-kind", "substring-string", "-from", "1", "-to", "6"},
		{aPath, bPath, "query", "-kind", "prefix-suffix", "-from", "3", "-to", "2"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
}

func TestRunFASTA(t *testing.T) {
	dir := t.TempDir()
	fa := filepath.Join(dir, "x.fa")
	if err := os.WriteFile(fa, []byte(">one\nACGTACGT\n>two\nGGGG\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fasta", fa, fa, "score"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                               // no inputs
		{"-a-text", "x"},                 // missing b
		{"-a-text", "x", "-b-text", "y"}, // missing subcommand
		{"-a-text", "x", "-b-text", "y", "bogus"},                  // unknown subcommand
		{"-alg", "nope", "-a-text", "x", "-b-text", "y", "score"},  // unknown algorithm
		{"-a-text", "x", "-b-text", "y", "windows", "-width", "9"}, // width too large
		{"-a-text", "x", "-b-text", "y", "query", "-kind", "nope"}, // unknown kind
		{"/nonexistent/a", "/nonexistent/b", "score"},              // unreadable file
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunEditMode(t *testing.T) {
	for _, args := range [][]string{
		{"-edit", "-a-text", "kitten", "-b-text", "sitting", "score"},
		{"-edit", "-a-text", "kitten", "-b-text", "the sitting cat", "windows", "-top", "2"},
		{"-edit", "-a-text", "kitten", "-b-text", "sitting", "query", "-kind", "string-substring", "-from", "0", "-to", "6"},
		{"-edit", "-a-text", "kitten", "-b-text", "sitting", "query", "-kind", "suffix-prefix", "-from", "1", "-to", "4"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
	for _, args := range [][]string{
		{"-edit", "-a-text", "x", "-b-text", "y", "bogus"},
		{"-edit", "-a-text", "x", "-b-text", "y", "windows", "-width", "5"},
		{"-edit", "-a-text", "x", "-b-text", "y", "query", "-kind", "nope"},
	} {
		if err := run(args); err == nil {
			t.Fatalf("run(%v) succeeded, want error", args)
		}
	}
}
