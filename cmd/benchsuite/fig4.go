package main

import (
	"fmt"
	"math/rand"
	"time"

	"semilocal/internal/benchkit"
	"semilocal/internal/combing"
	"semilocal/internal/dataset"
	"semilocal/internal/perm"
	"semilocal/internal/steadyant"
)

// fig4a — sequential braid multiplication: speedup of the precalc,
// memory and combined optimizations over the unoptimized steady ant, on
// random permutations of growing size.
func fig4a(c *cfg) {
	t := benchkit.NewTable("size", "base", "precalc", "memory", "combined",
		"speedup_precalc", "speedup_memory", "speedup_combined")
	for i, n := range c.permSizes {
		rng := rand.New(rand.NewSource(c.seed + int64(i)))
		p, q := perm.Random(n, rng), perm.Random(n, rng)
		times := make(map[steadyant.Variant]time.Duration)
		for _, v := range []steadyant.Variant{steadyant.Base, steadyant.Precalc, steadyant.Memory, steadyant.Combined} {
			v := v
			times[v] = benchkit.Measure(c.reps, func() { steadyant.MultiplyVariant(p, q, v) })
		}
		t.AddRow(n, times[steadyant.Base], times[steadyant.Precalc], times[steadyant.Memory], times[steadyant.Combined],
			benchkit.Ratio(times[steadyant.Base], times[steadyant.Precalc]),
			benchkit.Ratio(times[steadyant.Base], times[steadyant.Memory]),
			benchkit.Ratio(times[steadyant.Base], times[steadyant.Combined]))
	}
	c.emit("Figure 4a — braid multiplication optimizations",
		"speedups > 1, decreasing with size; combined ≈ 1.75x at 1e7", t)
}

// fig4b — parallel braid multiplication: running time against the depth
// at which the recursion switches to the sequential algorithm.
func fig4b(c *cfg) {
	n := c.permBig
	rng := rand.New(rand.NewSource(c.seed))
	p, q := perm.Random(n, rng), perm.Random(n, rng)
	seq := benchkit.Measure(c.reps, func() { steadyant.Multiply(p, q) })
	t := benchkit.NewTable("switch_depth", "time", "speedup_vs_sequential")
	t.AddRow(0, seq, benchkit.Ratio(seq, seq))
	for depth := 1; depth <= 6; depth++ {
		depth := depth
		d := benchkit.Measure(c.reps, func() {
			steadyant.MultiplyParallel(p, q, steadyant.ParallelOptions{SwitchDepth: depth, Workers: c.maxThreads})
		})
		t.AddRow(depth, d, benchkit.Ratio(seq, d))
	}
	c.emit("Figure 4b — parallel braid multiplication vs switch depth (size "+itoa(n)+")",
		"optimum near depth 4, ≈ 3.7x on the paper's 8 cores (≈ 1x on a single-core host)", t)
}

// fig4c — sequential iterative combing, basic vs load-balanced, with the
// braid multiplication share of the load-balanced variant.
func fig4c(c *cfg) {
	t := benchkit.NewTable("length", "semi_antidiag", "semi_load_balanced", "braid_mult_alone", "mult_share")
	for i, n := range c.combLens {
		a := dataset.Normal(n, 1, c.seed+int64(i))
		b := dataset.Normal(n, 1, c.seed+1000+int64(i))
		basic := benchkit.Measure(c.reps, func() { combing.Antidiag(a, b, combing.Options{Branchless: true}) })
		lb := benchkit.Measure(c.reps, func() {
			combing.LoadBalanced(a, b, combing.Options{Branchless: true}, steadyant.Multiply)
		})
		// The load-balanced variant performs two multiplications of
		// braids of order m+n; time them on representative inputs.
		rng := rand.New(rand.NewSource(c.seed + 2000 + int64(i)))
		p1, p2 := perm.Random(2*n, rng), perm.Random(2*n, rng)
		mult := benchkit.Measure(c.reps, func() {
			steadyant.Multiply(steadyant.Multiply(p1, p2), p1)
		})
		t.AddRow(n, basic, lb, mult, fmt.Sprintf("%.0f%%", 100*mult.Seconds()/lb.Seconds()))
	}
	c.emit("Figure 4c — basic vs load-balanced iterative combing (sequential)",
		"both variants close; braid multiplication is a small fraction of total time", t)
}

// itoa renders sizes compactly: exact multiples of 10³ and 10⁶ get a
// "k"/"M" suffix.
func itoa(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return digits(n/1_000_000) + "M"
	case n >= 1_000 && n%1_000 == 0:
		return digits(n/1_000) + "k"
	}
	return digits(n)
}

func digits(n int) string {
	buf := [20]byte{}
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if i == len(buf) {
		return "0"
	}
	return string(buf[i:])
}
