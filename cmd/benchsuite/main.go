// Benchsuite regenerates every table and figure of the evaluation
// section of Mishin, Berezun, Tiskin, "Efficient Parallel Algorithms for
// String Comparison" (ICPP 2021). Each subcommand reproduces one figure;
// "all" runs the entire suite. See DESIGN.md for the experiment index
// and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	benchsuite [flags] fig4a|fig4b|fig4c|fig5|fig6|fig7|fig8|fig9a|fig9b|fig9cd|fig9e|all
//
// Flags:
//
//	-scale quick|default|paper   problem sizes (paper = the sizes used in
//	                             the publication; expect long runtimes)
//	-csv                         emit CSV instead of aligned tables
//	-seed N                      base RNG seed
//	-reps N                      timing repetitions (min is reported)
//	-maxthreads N                largest worker count in thread sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"semilocal/internal/benchkit"
	"semilocal/internal/steadyant"
)

type cfg struct {
	scale      string
	csv        bool
	outDir     string
	seed       int64
	reps       int
	maxThreads int

	permSizes []int // fig4a braid multiplication sizes
	permBig   int   // fig4b parallel multiplication size
	combLens  []int // fig4c / fig5 combing lengths
	hybLens   []int // fig6 hybrid threshold lengths
	threadLen int   // fig7/fig8 input length
	binLen    int   // fig9a-d binary length
	bin9eLen  int   // fig9e comparison length (combing-bound)
}

func newCfg(scale string, seed int64, reps, maxThreads int, csv bool) (*cfg, error) {
	c := &cfg{scale: scale, csv: csv, seed: seed, reps: reps, maxThreads: maxThreads}
	switch scale {
	case "quick":
		c.permSizes = []int{10_000, 100_000}
		c.permBig = 200_000
		c.combLens = []int{2_000, 5_000}
		c.hybLens = []int{5_000, 10_000}
		c.threadLen = 10_000
		c.binLen = 30_000
		c.bin9eLen = 10_000
	case "default":
		c.permSizes = []int{10_000, 100_000, 1_000_000}
		c.permBig = 1_000_000
		c.combLens = []int{2_000, 5_000, 10_000, 20_000}
		c.hybLens = []int{10_000, 30_000}
		c.threadLen = 30_000
		c.binLen = 100_000
		c.bin9eLen = 30_000
	case "paper":
		c.permSizes = []int{10_000, 100_000, 1_000_000, 10_000_000}
		c.permBig = 10_000_000
		c.combLens = []int{10_000, 30_000, 100_000}
		c.hybLens = []int{10_000, 100_000, 1_000_000}
		c.threadLen = 100_000
		c.binLen = 1_000_000
		c.bin9eLen = 1_000_000
	default:
		return nil, fmt.Errorf("unknown scale %q (want quick, default or paper)", scale)
	}
	return c, nil
}

// threads returns the worker counts swept by the thread-scaling figures.
func (c *cfg) threads() []int {
	out := []int{1}
	for t := 2; t <= c.maxThreads; t *= 2 {
		out = append(out, t)
	}
	return out
}

// emit prints a finished table in the configured format, and also
// writes it as CSV under outDir when one is configured.
func (c *cfg) emit(title, shape string, t *benchkit.Table) {
	if c.outDir != "" {
		name := slug(title) + ".csv"
		f, err := os.Create(filepath.Join(c.outDir, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
		} else {
			t.FprintCSV(f)
			f.Close()
		}
	}
	if c.csv {
		fmt.Printf("# %s\n", title)
		t.FprintCSV(os.Stdout)
		fmt.Println()
		return
	}
	fmt.Printf("=== %s ===\n", title)
	if shape != "" {
		fmt.Printf("paper shape: %s\n", shape)
	}
	t.Fprint(os.Stdout)
	fmt.Println()
}

var figures = map[string]func(*cfg){
	"fig4a": fig4a,
	"fig4b": fig4b,
	"fig4c": fig4c,
	"fig5":  fig5,
	"fig6":  fig6,
	"fig7":  fig7,
	"fig8":  fig8,
	"fig9a": fig9a,
	"fig9b": fig9b,
	"fig9cd": func(c *cfg) {
		fig9cd(c)
	},
	"fig9e": fig9e,
}

func figureNames() []string {
	names := make([]string, 0, len(figures))
	for n := range figures {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func main() {
	scale := flag.String("scale", "default", "problem sizes: quick, default or paper")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	seed := flag.Int64("seed", 1, "base RNG seed")
	reps := flag.Int("reps", 2, "timing repetitions per measurement")
	maxThreads := flag.Int("maxthreads", 8, "largest worker count in thread sweeps")
	outDir := flag.String("outdir", "", "also write each table as CSV into this directory")
	flag.Parse()

	c, err := newCfg(*scale, *seed, *reps, *maxThreads, *csv)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(2)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(2)
		}
		c.outDir = *outDir
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: benchsuite [flags] %v|all\n", figureNames())
		os.Exit(2)
	}
	fmt.Printf("benchsuite: %s  GOMAXPROCS=%d  NumCPU=%d  scale=%s  seed=%d  reps=%d\n\n",
		runtime.Version(), runtime.GOMAXPROCS(0), runtime.NumCPU(), c.scale, c.seed, c.reps)
	steadyant.WarmPrecalc()
	for _, name := range args {
		if name == "all" {
			for _, f := range figureNames() {
				figures[f](c)
			}
			continue
		}
		f, ok := figures[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchsuite: unknown figure %q (want one of %v)\n", name, figureNames())
			os.Exit(2)
		}
		f(c)
	}
}

// slug turns a table title into a file-name-safe identifier.
func slug(title string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == ',':
			b.WriteByte('_')
		}
	}
	return strings.Trim(b.String(), "_")
}
