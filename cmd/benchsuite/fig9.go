package main

import (
	"fmt"
	"time"

	"semilocal/internal/benchkit"
	"semilocal/internal/bitlcs"
	"semilocal/internal/combing"
	"semilocal/internal/dataset"
	"semilocal/internal/hybrid"
)

func binaryPair(c *cfg, n int) (a, b []byte) {
	return dataset.Binary(n, 0.5, c.seed), dataset.Binary(n, 0.5, c.seed+1)
}

// fig9a — the memory-access optimization of the bit-parallel algorithm
// (bit_old vs bit_new_1) across thread counts.
func fig9a(c *cfg) {
	a, b := binaryPair(c, c.binLen)
	t := benchkit.NewTable("threads", "bit_old", "bit_new_1", "speedup")
	for _, w := range c.threads() {
		w := w
		old := benchkit.Measure(c.reps, func() { bitlcs.Score(a, b, bitlcs.Old, bitlcs.Options{Workers: w}) })
		mem := benchkit.Measure(c.reps, func() { bitlcs.Score(a, b, bitlcs.MemOpt, bitlcs.Options{Workers: w}) })
		t.AddRow(w, old, mem, benchkit.Ratio(old, mem))
	}
	c.emit(fmt.Sprintf("Figure 9a — bit-parallel memory-access optimization (binary, length %s)", itoa(c.binLen)),
		"optimization helps most when multithreaded (paper: 4.5x at 16 threads, via less false sharing)", t)
}

// fig9b — the optimized Boolean formula (bit_new_1 vs bit_new_2),
// sequential.
func fig9b(c *cfg) {
	a, b := binaryPair(c, c.binLen)
	mem := benchkit.Measure(c.reps, func() { bitlcs.Score(a, b, bitlcs.MemOpt, bitlcs.Options{}) })
	form := benchkit.Measure(c.reps, func() { bitlcs.Score(a, b, bitlcs.FormulaOpt, bitlcs.Options{}) })
	t := benchkit.NewTable("version", "time", "speedup_vs_bit_new_1")
	t.AddRow("bit_new_1", mem, benchkit.Ratio(mem, mem))
	t.AddRow("bit_new_2", form, benchkit.Ratio(mem, form))
	c.emit(fmt.Sprintf("Figure 9b — optimized Boolean formula (binary, length %s)", itoa(c.binLen)),
		"18 → 12 operations per anti-diagonal step; paper measured 1.48x", t)
}

// fig9cd — scalability of the bit-parallel algorithm and of the hybrid
// on long binary strings.
func fig9cd(c *cfg) {
	a, b := binaryPair(c, c.binLen)
	ha, hb := binaryPair(c, c.bin9eLen)
	t := benchkit.NewTable("threads", "bit_new_2", "bit_speedup",
		"hybrid(len="+itoa(c.bin9eLen)+")", "hybrid_speedup")
	var bitBase, hybBase time.Duration
	for _, w := range c.threads() {
		w := w
		bt := benchkit.Measure(c.reps, func() { bitlcs.Score(a, b, bitlcs.FormulaOpt, bitlcs.Options{Workers: w}) })
		ht := benchkit.Measure(c.reps, func() {
			hybrid.GridReduction(ha, hb, hybrid.GridOptions{Workers: w, Tiles: 2 * w, Use16: true})
		})
		if w == 1 {
			bitBase, hybBase = bt, ht
		}
		t.AddRow(w, bt, benchkit.Ratio(bitBase, bt), ht, benchkit.Ratio(hybBase, ht))
	}
	c.emit(fmt.Sprintf("Figure 9c,d — scalability on binary strings (bit length %s)", itoa(c.binLen)),
		"paper: both near 8x on 8 cores for length 1e6 (flat on a single-core host)", t)
}

// fig9e — absolute comparison on binary strings: the bit-parallel
// algorithm vs hybrid and iterative combing.
func fig9e(c *cfg) {
	a, b := binaryPair(c, c.bin9eLen)
	bit := benchkit.Measure(c.reps, func() { bitlcs.Score(a, b, bitlcs.FormulaOpt, bitlcs.Options{}) })
	cipr := benchkit.Measure(c.reps, func() { bitlcs.CIPR(a, b) })
	hyb := benchkit.Measure(c.reps, func() {
		hybrid.GridReduction(a, b, hybrid.GridOptions{Tiles: 8, Use16: true})
	})
	iter := benchkit.Measure(c.reps, func() {
		combing.Antidiag(a, b, combing.Options{Branchless: true})
	})
	t := benchkit.NewTable("algorithm", "time", "bit_new_2_advantage")
	t.AddRow("bit_new_2", bit, benchkit.Ratio(bit, bit))
	t.AddRow("cipr_bitvector (baseline, score only)", cipr, benchkit.Ratio(cipr, bit))
	t.AddRow("semi_hybrid_iterative", hyb, benchkit.Ratio(hyb, bit))
	t.AddRow("semi_antidiag_simd", iter, benchkit.Ratio(iter, bit))
	c.emit(fmt.Sprintf("Figure 9e — algorithms on binary strings (length %s, sequential)", itoa(c.bin9eLen)),
		"paper: bit-parallel ≈ 16x faster than hybrid and ≈ 29x faster than iterative combing", t)
}
