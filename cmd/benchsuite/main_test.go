package main

import "testing"

func TestNewCfgScales(t *testing.T) {
	for _, scale := range []string{"quick", "default", "paper"} {
		c, err := newCfg(scale, 1, 2, 8, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(c.permSizes) == 0 || len(c.combLens) == 0 || c.binLen == 0 {
			t.Fatalf("%s: incomplete config %+v", scale, c)
		}
	}
	if _, err := newCfg("bogus", 1, 2, 8, false); err == nil {
		t.Fatal("bogus scale accepted")
	}
}

func TestThreadsSweep(t *testing.T) {
	c := &cfg{maxThreads: 8}
	got := c.threads()
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("threads() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("threads() = %v, want %v", got, want)
		}
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{
		0:          "0",
		7:          "7",
		1000:       "1k",
		30000:      "30k",
		1000000:    "1M",
		10000000:   "10M",
		1234:       "1234",
		1000000000: "1000M",
	}
	for n, want := range cases {
		if got := itoa(n); got != want {
			t.Errorf("itoa(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestFigureRegistryComplete(t *testing.T) {
	for _, name := range []string{"fig4a", "fig4b", "fig4c", "fig5", "fig6", "fig7",
		"fig8", "fig9a", "fig9b", "fig9cd", "fig9e",
		"ablate16", "ablatebase", "ablatechunk", "ablateselect"} {
		if _, ok := figures[name]; !ok {
			t.Errorf("figure %q not registered", name)
		}
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Figure 4a — braid multiplication optimizations": "figure_4a__braid_multiplication_optimizations",
		"Ablation — 16-bit vs 32-bit":                    "ablation__16_bit_vs_32_bit",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}
