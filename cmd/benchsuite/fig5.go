package main

import (
	"fmt"
	"time"

	"semilocal/internal/benchkit"
	"semilocal/internal/combing"
	"semilocal/internal/dataset"
	"semilocal/internal/lcs"
)

// scorerSpec is one algorithm column of Figure 5.
type scorerSpec struct {
	name string
	run  func(a, b []byte)
}

func fig5Scorers() []scorerSpec {
	return []scorerSpec{
		{"prefix_rowmajor", func(a, b []byte) { lcs.PrefixRowMajor(a, b) }},
		{"prefix_antidiag", func(a, b []byte) { lcs.PrefixAntidiag(a, b) }},
		{"prefix_antidiag_simd", func(a, b []byte) { lcs.PrefixAntidiagBranchless(a, b) }},
		{"semi_rowmajor", func(a, b []byte) { combing.RowMajor(a, b) }},
		{"semi_antidiag", func(a, b []byte) { combing.Antidiag(a, b, combing.Options{}) }},
		{"semi_antidiag_simd", func(a, b []byte) { combing.Antidiag(a, b, combing.Options{Branchless: true}) }},
	}
}

// fig5 — sequential performance of prefix LCS vs semi-local combing on
// synthetic strings of varying match frequency (σ) and on simulated
// genome pairs.
func fig5(c *cfg) {
	scorers := fig5Scorers()
	header := []string{"input", "length"}
	for _, s := range scorers {
		header = append(header, s.name)
	}
	t := benchkit.NewTable(header...)

	type input struct {
		label string
		a, b  []byte
	}
	var inputs []input
	for _, sigma := range []float64{0.5, 1, 4} {
		for i, n := range c.combLens {
			inputs = append(inputs, input{
				label: fmt.Sprintf("normal σ=%g", sigma),
				a:     dataset.Normal(n, sigma, c.seed+int64(i)),
				b:     dataset.Normal(n, sigma, c.seed+500+int64(i)),
			})
		}
	}
	for _, n := range c.combLens {
		a, b := dataset.GenomePair(n, c.seed)
		inputs = append(inputs, input{label: "genome pair", a: a, b: b})
	}

	for _, in := range inputs {
		row := []interface{}{in.label, len(in.a)}
		for _, s := range scorers {
			s := s
			d := benchkit.Measure(c.reps, func() { s.run(in.a, in.b) })
			row = append(row, d)
		}
		t.AddRow(row...)
	}
	c.emit("Figure 5 — prefix LCS vs semi-local combing (sequential)",
		"semi_rowmajor ≈ prefix_rowmajor; branchless variants fastest (paper's AVX gave 5.5-6x)", t)
}

// cellsPerSecond formats throughput for a quadratic-grid algorithm.
func cellsPerSecond(m, n int, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1f Mcell/s", float64(m)*float64(n)/d.Seconds()/1e6)
}
