package main

import (
	"fmt"
	"time"

	"semilocal/internal/benchkit"
	"semilocal/internal/combing"
	"semilocal/internal/dataset"
	"semilocal/internal/hybrid"
	"semilocal/internal/steadyant"
)

// parallelAlg is one line of the thread-scaling figures.
type parallelAlg struct {
	name string
	run  func(a, b []byte, workers int)
}

func parallelAlgs() []parallelAlg {
	return []parallelAlg{
		{"semi_antidiag_simd", func(a, b []byte, w int) {
			combing.Antidiag(a, b, combing.Options{Workers: w, Branchless: true})
		}},
		{"semi_load_balanced", func(a, b []byte, w int) {
			combing.LoadBalanced(a, b, combing.Options{Workers: w, Branchless: true}, steadyant.Multiply)
		}},
		{"semi_hybrid", func(a, b []byte, w int) {
			hybrid.Hybrid(a, b, hybrid.Options{Depth: log2ceil(w) + 1, Workers: w, Branchless: true})
		}},
		{"semi_hybrid_iterative", func(a, b []byte, w int) {
			hybrid.GridReduction(a, b, hybrid.GridOptions{Workers: w, Tiles: 2 * w, Use16: true})
		}},
	}
}

// runThreadSweep measures every parallel algorithm at every thread count
// on the given input pair; it returns times[algIndex][threadIndex].
func runThreadSweep(c *cfg, a, b []byte) [][]time.Duration {
	algs := parallelAlgs()
	out := make([][]time.Duration, len(algs))
	for ai, alg := range algs {
		alg := alg
		out[ai] = make([]time.Duration, len(c.threads()))
		for ti, w := range c.threads() {
			w := w
			out[ai][ti] = benchkit.Measure(c.reps, func() { alg.run(a, b, w) })
		}
	}
	return out
}

func threadSweepInputs(c *cfg) map[string][2][]byte {
	synthA := dataset.Normal(c.threadLen, 1, c.seed)
	synthB := dataset.Normal(c.threadLen, 1, c.seed+1)
	genA, genB := dataset.GenomePair(c.threadLen, c.seed+2)
	return map[string][2][]byte{
		"synthetic σ=1": {synthA, synthB},
		"genome pair":   {genA, genB},
	}
}

// fig7 — running time of the parallel semi-local algorithms against the
// number of worker threads.
func fig7(c *cfg) {
	algs := parallelAlgs()
	for label, pair := range threadSweepInputs(c) {
		header := []string{"threads"}
		for _, alg := range algs {
			header = append(header, alg.name)
		}
		t := benchkit.NewTable(header...)
		times := runThreadSweep(c, pair[0], pair[1])
		for ti, w := range c.threads() {
			row := []interface{}{w}
			for ai := range algs {
				row = append(row, times[ai][ti])
			}
			t.AddRow(row...)
		}
		c.emit(fmt.Sprintf("Figure 7 — running time vs threads (%s, length %s)", label, itoa(c.threadLen)),
			"hybrid beats iterative combing; load-balancing slows things down (mult > saved syncs)", t)
	}
}

// fig8 — the same sweep reported as scalability (speedup over one
// worker).
func fig8(c *cfg) {
	algs := parallelAlgs()
	for label, pair := range threadSweepInputs(c) {
		header := []string{"threads"}
		for _, alg := range algs {
			header = append(header, alg.name)
		}
		t := benchkit.NewTable(header...)
		times := runThreadSweep(c, pair[0], pair[1])
		for ti, w := range c.threads() {
			row := []interface{}{w}
			for ai := range algs {
				row = append(row, benchkit.Ratio(times[ai][0], times[ai][ti]))
			}
			t.AddRow(row...)
		}
		c.emit(fmt.Sprintf("Figure 8 — scalability (%s, length %s)", label, itoa(c.threadLen)),
			"paper: up to 4-5x at 7 threads on 8 cores; bounded by GOMAXPROCS/core count here", t)
	}
}

func log2ceil(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}
