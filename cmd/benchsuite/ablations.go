package main

import (
	"fmt"
	"math/rand"

	"semilocal/internal/benchkit"
	"semilocal/internal/bitlcs"
	"semilocal/internal/combing"
	"semilocal/internal/dataset"
	"semilocal/internal/perm"
	"semilocal/internal/steadyant"
)

func init() {
	figures["ablate16"] = ablate16
	figures["ablatebase"] = ablateBase
	figures["ablatechunk"] = ablateChunk
}

// ablate16 — DESIGN.md ablation: 16-bit vs 32-bit strand indices in
// iterative combing (the paper's §4.3 reduced-precision optimization,
// which halves the strand arrays' cache footprint).
func ablate16(c *cfg) {
	t := benchkit.NewTable("length", "antidiag_32bit", "antidiag_16bit", "speedup")
	for i, n := range c.combLens {
		if !combing.Fits16(n, n) {
			continue
		}
		a := dataset.Normal(n, 1, c.seed+int64(i))
		b := dataset.Normal(n, 1, c.seed+300+int64(i))
		t32 := benchkit.Measure(c.reps, func() { combing.Antidiag(a, b, combing.Options{Branchless: true}) })
		t16 := benchkit.Measure(c.reps, func() { combing.Antidiag16(a, b, combing.Options{}) })
		t.AddRow(n, t32, t16, benchkit.Ratio(t32, t16))
	}
	c.emit("Ablation — 16-bit vs 32-bit strand indices (sequential branchless combing)",
		"16-bit indices halve memory traffic; the paper projects up to 2x from reduced precision", t)
}

// ablateBase — precalc recursion cut-off order: how much of the precalc
// win comes from each level of the lookup base.
func ablateBase(c *cfg) {
	n := c.permSizes[len(c.permSizes)-1]
	rng := rand.New(rand.NewSource(c.seed))
	p, q := perm.Random(n, rng), perm.Random(n, rng)
	base1 := benchkit.Measure(c.reps, func() { steadyant.MultiplyWithBase(p, q, 1) })
	t := benchkit.NewTable("lookup_base_order", "time", "speedup_vs_base1")
	t.AddRow(1, base1, benchkit.Ratio(base1, base1))
	for base := 2; base <= 5; base++ {
		base := base
		d := benchkit.Measure(c.reps, func() { steadyant.MultiplyWithBase(p, q, base) })
		t.AddRow(base, d, benchkit.Ratio(base1, d))
	}
	c.emit(fmt.Sprintf("Ablation — precalc lookup base order (steady ant, size %s)", itoa(n)),
		"each extra level of table lookup trims one recursion level; gains taper", t)
}

// ablateChunk — minimum per-diagonal chunk size for parallel combing:
// the tradeoff between barrier/handoff overhead and parallel coverage.
func ablateChunk(c *cfg) {
	n := c.threadLen
	a := dataset.Normal(n, 1, c.seed)
	b := dataset.Normal(n, 1, c.seed+1)
	w := c.maxThreads
	t := benchkit.NewTable("min_chunk", "time_parallel_antidiag")
	for _, chunk := range []int{64, 256, 1024, 4096, 16384} {
		chunk := chunk
		d := benchkit.Measure(c.reps, func() {
			combing.Antidiag(a, b, combing.Options{Workers: w, Branchless: true, MinChunk: chunk})
		})
		t.AddRow(chunk, d)
	}
	c.emit(fmt.Sprintf("Ablation — parallel combing minimum chunk (length %s, %d workers)", itoa(n), w),
		"small chunks pay per-diagonal handoff; huge chunks serialize short diagonals", t)
}

func init() {
	figures["ablateselect"] = ablateSelect
}

// ablateSelect — §4.1's two branch-elimination strategies for the
// combing inner loop: conditional branch vs arithmetic select
// (h·(1-p)+p·v) vs bitwise masks.
func ablateSelect(c *cfg) {
	t := benchkit.NewTable("length", "branching", "arithmetic_select", "minmax_select", "bitwise_select",
		"bitwise_vs_branching", "bitwise_vs_arithmetic")
	for i, n := range c.combLens {
		a := dataset.Normal(n, 1, c.seed+int64(i))
		b := dataset.Normal(n, 1, c.seed+400+int64(i))
		br := benchkit.Measure(c.reps, func() { combing.Antidiag(a, b, combing.Options{}) })
		ar := benchkit.Measure(c.reps, func() {
			combing.Antidiag(a, b, combing.Options{Branchless: true, ArithmeticSelect: true})
		})
		mm := benchkit.Measure(c.reps, func() {
			combing.Antidiag(a, b, combing.Options{Branchless: true, MinMaxSelect: true})
		})
		bw := benchkit.Measure(c.reps, func() { combing.Antidiag(a, b, combing.Options{Branchless: true}) })
		t.AddRow(n, br, ar, mm, bw, benchkit.Ratio(br, bw), benchkit.Ratio(ar, bw))
	}
	c.emit("Ablation — branch elimination strategy in the combing inner loop",
		"paper §4.1: bitwise masks replace multiplications with cheaper Boolean instructions", t)
}

func init() {
	figures["extalphabet"] = extAlphabet
}

// extAlphabet — extension experiment (the paper's future work §6):
// the bit-plane generalization of the bit-parallel algorithm on larger
// alphabets, against the classical CIPR bit-vector baseline and
// word-level combing.
func extAlphabet(c *cfg) {
	t := benchkit.NewTable("alphabet", "length", "bitplane_combing", "cipr_bitvector", "semi_antidiag_simd",
		"bitplane_vs_combing")
	n := c.bin9eLen
	for _, sigma := range []int{2, 4, 20, 256} {
		a := dataset.Uniform(n, sigma, c.seed)
		b := dataset.Uniform(n, sigma, c.seed+1)
		bp := benchkit.Measure(c.reps, func() { bitlcs.ScoreAlphabet(a, b, bitlcs.Options{}) })
		ci := benchkit.Measure(c.reps, func() { bitlcs.CIPR(a, b) })
		cm := benchkit.Measure(c.reps, func() { combing.Antidiag(a, b, combing.Options{Branchless: true}) })
		t.AddRow(sigma, n, bp, ci, cm, benchkit.Ratio(cm, bp))
	}
	c.emit(fmt.Sprintf("Extension — bit-plane alphabet generalization (length %s)", itoa(n)),
		"cost grows only with ceil(log2 sigma) in the match computation; stays far ahead of combing", t)
}
