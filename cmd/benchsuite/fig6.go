package main

import (
	"fmt"

	"semilocal/internal/benchkit"
	"semilocal/internal/dataset"
	"semilocal/internal/hybrid"
)

// fig6 — sequential cost of the hybrid algorithm as a function of the
// recursion depth at which it switches to iterative combing. Depth 0 is
// pure iterative combing; deeper thresholds buy coarse-grained
// parallelism at a sequential price.
func fig6(c *cfg) {
	header := []string{"switch_depth"}
	for _, n := range c.hybLens {
		header = append(header, "len="+itoa(n), fmt.Sprintf("slowdown(len=%s)", itoa(n)))
	}
	t := benchkit.NewTable(header...)

	type series struct {
		a, b []byte
		base float64
	}
	inputs := make([]series, len(c.hybLens))
	for i, n := range c.hybLens {
		inputs[i] = series{
			a: dataset.Normal(n, 1, c.seed+int64(i)),
			b: dataset.Normal(n, 1, c.seed+700+int64(i)),
		}
	}
	for depth := 0; depth <= 6; depth++ {
		row := []interface{}{depth}
		for i := range inputs {
			in := &inputs[i]
			depth := depth
			d := benchkit.Measure(c.reps, func() {
				hybrid.Hybrid(in.a, in.b, hybrid.Options{Depth: depth, Branchless: true})
			})
			if depth == 0 {
				in.base = d.Seconds()
			}
			row = append(row, d, fmt.Sprintf("%.2fx", d.Seconds()/in.base))
		}
		t.AddRow(row...)
	}
	c.emit("Figure 6 — hybrid switch-depth tradeoff (sequential)",
		"sequential time grows with depth; tolerable depth grows with input length", t)
}
