package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"semilocal/internal/dataset"
)

func writeFamily(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "fam.fa")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteFASTA(f, dataset.SimulateGenomes(4, 800, 3)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunProducesSymmetricMatrix(t *testing.T) {
	path := writeFamily(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := run("simd", 2, path, f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want header + 4 rows:\n%s", len(lines), data)
	}
	// Diagonal must be 1.0000 and the matrix symmetric.
	var cells [4][4]string
	for i, line := range lines[1:] {
		parts := strings.Split(line, ",")
		if len(parts) != 5 {
			t.Fatalf("row %d has %d cells", i, len(parts))
		}
		copy(cells[i][:], parts[1:])
	}
	for i := 0; i < 4; i++ {
		if cells[i][i] != "1.0000" {
			t.Fatalf("diagonal [%d][%d] = %s", i, i, cells[i][i])
		}
		for j := 0; j < 4; j++ {
			if cells[i][j] != cells[j][i] {
				t.Fatalf("matrix asymmetric at %d,%d", i, j)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeFamily(t)
	if err := run("bogus", 1, path, os.Stdout); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run("simd", 1, "/nonexistent.fa", os.Stdout); err == nil {
		t.Fatal("missing file accepted")
	}
	single := filepath.Join(t.TempDir(), "one.fa")
	if err := os.WriteFile(single, []byte(">only\nACGT\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("simd", 1, single, os.Stdout); err == nil {
		t.Fatal("single-record file accepted")
	}
}
