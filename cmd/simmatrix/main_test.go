package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"semilocal/internal/dataset"
)

func writeFamily(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "fam.fa")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteFASTA(f, dataset.SimulateGenomes(4, 800, 3)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunProducesSymmetricMatrix(t *testing.T) {
	path := writeFamily(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := run("simd", 2, path, f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want header + 4 rows:\n%s", len(lines), data)
	}
	// Diagonal must be 1.0000 and the matrix symmetric.
	var cells [4][4]string
	for i, line := range lines[1:] {
		parts := strings.Split(line, ",")
		if len(parts) != 5 {
			t.Fatalf("row %d has %d cells", i, len(parts))
		}
		copy(cells[i][:], parts[1:])
	}
	for i := 0; i < 4; i++ {
		if cells[i][i] != "1.0000" {
			t.Fatalf("diagonal [%d][%d] = %s", i, i, cells[i][i])
		}
		for j := 0; j < 4; j++ {
			if cells[i][j] != cells[j][i] {
				t.Fatalf("matrix asymmetric at %d,%d", i, j)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeFamily(t)
	if err := run("bogus", 1, path, os.Stdout); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run("simd", 1, "/nonexistent.fa", os.Stdout); err == nil {
		t.Fatal("missing file accepted")
	}
	single := filepath.Join(t.TempDir(), "one.fa")
	if err := os.WriteFile(single, []byte(">only\nACGT\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("simd", 1, single, os.Stdout); err == nil {
		t.Fatal("single-record file accepted")
	}
}

// update regenerates the golden file under testdata:
// go test ./cmd/simmatrix -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// TestGolden pins the exact CSV output on a fixed checked-in family so
// refactors of the kernel or serving layers cannot silently change CLI
// behavior. The input under testdata is handwritten (not simulated), so
// the run is deterministic for any algorithm.
func TestGolden(t *testing.T) {
	for _, alg := range []string{"simd", "grid"} {
		t.Run(alg, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(alg, 2, filepath.Join("testdata", "family.fa"), &buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "family.golden")
			if *update && alg == "simd" {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			// Every algorithm must produce the same matrix, so all of them
			// compare against the one golden file.
			if buf.String() != string(want) {
				t.Errorf("output deviates from %s:\n--- got ---\n%s--- want ---\n%s", path, buf.String(), want)
			}
		})
	}
}
