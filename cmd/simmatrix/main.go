// Simmatrix computes the pairwise LCS-similarity matrix of every record
// in a FASTA file — the whole-collection version of the paper's
// real-life genome comparison — using a kernel algorithm of choice.
//
//	datagen -kind genomes -count 8 -n 30000 -out viruses.fa
//	simmatrix -alg grid -workers 8 viruses.fa
//
// Similarity is LCS(x, y) / min(|x|, |y|); output is a CSV matrix with
// record names.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"semilocal"
	"semilocal/internal/dataset"
)

func main() {
	alg := flag.String("alg", "grid", "algorithm: rowmajor, antidiag, simd, load-balanced, recursive, hybrid, grid")
	workers := flag.Int("workers", 1, "worker goroutines per comparison")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: simmatrix [-alg A] [-workers N] records.fa")
		os.Exit(2)
	}
	if err := run(*alg, *workers, flag.Arg(0), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simmatrix:", err)
		os.Exit(1)
	}
}

var algorithms = map[string]semilocal.Algorithm{
	"rowmajor":      semilocal.RowMajor,
	"antidiag":      semilocal.Antidiag,
	"simd":          semilocal.AntidiagBranchless,
	"load-balanced": semilocal.LoadBalanced,
	"recursive":     semilocal.Recursive,
	"hybrid":        semilocal.Hybrid,
	"grid":          semilocal.GridReduction,
}

func run(alg string, workers int, path string, out io.Writer) error {
	algorithm, ok := algorithms[alg]
	if !ok {
		return fmt.Errorf("unknown algorithm %q", alg)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	gs, err := dataset.ReadFASTA(f)
	if err != nil {
		return err
	}
	if len(gs) < 2 {
		return fmt.Errorf("%s: need at least two records, found %d", path, len(gs))
	}

	n := len(gs)
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
		sim[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			k, err := semilocal.Solve(gs[i].Seq, gs[j].Seq, semilocal.Config{
				Algorithm: algorithm, Workers: workers, Use16: true,
			})
			if err != nil {
				return err
			}
			d := min(len(gs[i].Seq), len(gs[j].Seq))
			s := 1.0
			if d > 0 {
				s = float64(k.Score()) / float64(d)
			}
			sim[i][j], sim[j][i] = s, s
		}
	}

	// CSV: header row of names, then one row per record.
	names := make([]string, n)
	for i, g := range gs {
		names[i] = strings.ReplaceAll(g.Name, ",", ";")
	}
	fmt.Fprintf(out, "name,%s\n", strings.Join(names, ","))
	for i := range sim {
		cells := make([]string, n)
		for j, v := range sim[i] {
			cells[j] = fmt.Sprintf("%.4f", v)
		}
		fmt.Fprintf(out, "%s,%s\n", names[i], strings.Join(cells, ","))
	}
	return nil
}

func min(x, y int) int {
	if x < y {
		return x
	}
	return y
}
