// Command loadgen is the closed-loop load harness for the sharded
// serving tier: N client goroutines drive /v1/batch over real HTTP,
// each waiting for its response before issuing the next call
// (closed-loop, so the tier is never asked for more concurrency than
// -clients), optionally paced to an aggregate target QPS. The workload
// is a configurable cache hit/miss mix: with probability
// -hit-permille/1000 a request draws from a fixed hot set of pairs,
// otherwise it fabricates a never-seen pair (a guaranteed kernel
// solve). Per-request latencies accumulate into the observability
// layer's mergeable power-of-two histograms, and the run ends with a
// latency-SLO report: achieved QPS, quantiles, the fraction of
// requests inside -slo, and the tier's cache/reroute counters.
//
// Point it at a running server with -target, or let it self-host a
// tier in process (-shards, -kernels) for reproducible scaling
// experiments:
//
//	go run ./cmd/loadgen -shards 4 -clients 8 -duration 5s \
//	    -hit-permille 900 -hot 48 -size 256
//
// (see EXPERIMENTS.md for the recorded 1-vs-4-shard runs).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"semilocal"
	"semilocal/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type config struct {
	target      string
	shards      int
	kernels     int
	clients     int
	duration    time.Duration
	qps         int
	hitPermille int
	hot         int
	size        int
	batch       int
	slo         time.Duration
	seed        int64
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.target, "target", "", "base URL of a running serving tier (empty = self-host in process)")
	fs.IntVar(&cfg.shards, "shards", 1, "self-host: engine shard count")
	fs.IntVar(&cfg.kernels, "kernels", 16, "self-host: cached kernels per shard (the horizontal-capacity knob)")
	fs.IntVar(&cfg.clients, "clients", 8, "concurrent closed-loop clients")
	fs.DurationVar(&cfg.duration, "duration", 5*time.Second, "run length")
	fs.IntVar(&cfg.qps, "qps", 0, "aggregate target request rate (0 = unpaced closed loop)")
	fs.IntVar(&cfg.hitPermille, "hit-permille", 900, "probability (per mille) a request draws from the hot set instead of a fresh pair")
	fs.IntVar(&cfg.hot, "hot", 32, "hot-set size in distinct pairs")
	fs.IntVar(&cfg.size, "size", 256, "bytes per input string")
	fs.IntVar(&cfg.batch, "batch", 1, "requests per HTTP call")
	fs.DurationVar(&cfg.slo, "slo", 50*time.Millisecond, "per-call latency objective for the report")
	fs.Int64Var(&cfg.seed, "seed", 1, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.clients < 1 || cfg.batch < 1 || cfg.hot < 1 || cfg.size < 1 {
		return fmt.Errorf("-clients, -batch, -hot and -size must be positive")
	}
	if cfg.hitPermille < 0 || cfg.hitPermille > 1000 {
		return fmt.Errorf("-hit-permille %d out of [0,1000]", cfg.hitPermille)
	}

	base := cfg.target
	var srv *semilocal.Server
	if base == "" {
		var err error
		srv, err = semilocal.NewServer(semilocal.ServerConfig{
			Shards: cfg.shards,
			Engine: semilocal.EngineOptions{MaxKernels: cfg.kernels},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(out, "# self-hosting %d shard(s) × %d kernels at %s\n", cfg.shards, cfg.kernels, base)
	}
	return drive(cfg, base, srv, out)
}

// pair is one input pair in its wire spelling.
type pair struct{ a, b string }

// makePair fabricates pair i deterministically from the seed: random
// payloads with a small shared prefix so scores are non-trivial.
func makePair(seed int64, i int, size int) pair {
	rng := rand.New(rand.NewSource(seed ^ int64(i)*0x9e3779b9))
	buf := make([]byte, 2*size)
	for j := range buf {
		buf[j] = 'a' + byte(rng.Intn(26))
	}
	return pair{a: string(buf[:size]), b: string(buf[size:])}
}

// clientReport is one client's half of the closed loop: its latency
// histogram and call/error tallies.
type clientReport struct {
	hist      obs.Histogram
	calls     int64
	errs      int64
	reqErrs   int64
	withinSLO int64
}

func drive(cfg config, base string, srv *semilocal.Server, out io.Writer) error {
	hotSet := make([]pair, cfg.hot)
	for i := range hotSet {
		hotSet[i] = makePair(cfg.seed, i, cfg.size)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	var fresh atomic.Int64 // global counter so miss pairs never repeat

	// Pacing: each client owns an equal slice of the target rate and
	// spaces its calls by batch/(qps/clients); 0 disables pacing.
	var interval time.Duration
	if cfg.qps > 0 {
		interval = time.Duration(int64(time.Second) * int64(cfg.batch) * int64(cfg.clients) / int64(cfg.qps))
	}

	deadline := time.Now().Add(cfg.duration)
	reports := make([]clientReport, cfg.clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rep := &reports[c]
			rng := rand.New(rand.NewSource(cfg.seed + int64(c)*7919))
			next := time.Now()
			for time.Now().Before(deadline) {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				reqs := make([]map[string]any, cfg.batch)
				for i := range reqs {
					var p pair
					if rng.Intn(1000) < cfg.hitPermille {
						p = hotSet[rng.Intn(len(hotSet))]
					} else {
						p = makePair(^cfg.seed, int(fresh.Add(1))+1<<30, cfg.size)
					}
					reqs[i] = map[string]any{"a": p.a, "b": p.b, "kind": "score"}
				}
				body, err := json.Marshal(map[string]any{"tenant": fmt.Sprintf("load-%d", c), "requests": reqs})
				if err != nil {
					rep.errs++
					continue
				}
				start := time.Now()
				resp, err := client.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
				lat := time.Since(start)
				rep.calls++
				if err != nil {
					rep.errs++
					continue
				}
				var br struct {
					Results []struct {
						Error string `json:"error"`
					} `json:"results"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&br)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					rep.errs++
					continue
				}
				rep.hist.Observe(lat)
				if lat <= cfg.slo {
					rep.withinSLO++
				}
				for _, r := range br.Results {
					if r.Error != "" {
						rep.reqErrs++
					}
				}
			}
		}(c)
	}
	wg.Wait()

	// Merge the per-client histograms — the mergeable-snapshot property
	// the obs layer guarantees.
	var merged obs.HistSnapshot
	var calls, errs, reqErrs, within int64
	for i := range reports {
		merged = merged.Merge(reports[i].hist.Snapshot())
		calls += reports[i].calls
		errs += reports[i].errs
		reqErrs += reports[i].reqErrs
		within += reports[i].withinSLO
	}
	if calls == 0 {
		return fmt.Errorf("no calls completed in %v", cfg.duration)
	}
	qps := float64(calls) * float64(cfg.batch) / cfg.duration.Seconds()
	fmt.Fprintf(out, "# loadgen: clients=%d batch=%d hit-permille=%d hot=%d size=%d duration=%v\n",
		cfg.clients, cfg.batch, cfg.hitPermille, cfg.hot, cfg.size, cfg.duration)
	fmt.Fprintf(out, "calls=%d requests=%d qps=%.0f call-errors=%d request-errors=%d\n",
		calls, calls*int64(cfg.batch), qps, errs, reqErrs)
	fmt.Fprintf(out, "latency p50=%v p90=%v p99=%v max=%v mean=%v\n",
		merged.Quantile(0.50), merged.Quantile(0.90), merged.Quantile(0.99),
		merged.Quantile(1.0), merged.Mean())
	fmt.Fprintf(out, "slo(%v)=%.1f%%\n", cfg.slo, 100*float64(within)/float64(calls))
	if srv != nil {
		stats := srv.Stats()
		fmt.Fprintf(out, "tier: hits=%d misses=%d sheds=%d reroutes=%d tenant-rejects=%d\n",
			stats["cache_hits"], stats["cache_misses"], stats["requests_shed"],
			stats["server_reroutes"], stats["tenant_rejects"])
	}
	return nil
}
