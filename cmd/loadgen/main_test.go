package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestLoadgenSmoke runs a tiny self-hosted closed loop and checks the
// report carries every section: the harness itself is load-bearing for
// the EXPERIMENTS.md scaling numbers, so it must not rot.
func TestLoadgenSmoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-shards", "2", "-clients", "4", "-duration", "300ms",
		"-hot", "8", "-size", "64", "-hit-permille", "800", "-batch", "2",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"# self-hosting 2 shard(s)",
		"calls=", "qps=", "call-errors=0", "request-errors=0",
		"latency p50=", "slo(50ms)=",
		"tier: hits=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

// TestLoadgenPaced: with a QPS target well under the tier's capacity,
// the achieved rate must land near the target (pacing, not saturation).
func TestLoadgenPaced(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-shards", "1", "-clients", "2", "-duration", "500ms",
		"-qps", "100", "-hot", "4", "-size", "64",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "qps=") {
		t.Fatalf("no qps in report:\n%s", out.String())
	}
	var qps float64
	for _, line := range strings.Split(out.String(), "\n") {
		i := strings.Index(line, " qps=")
		if i < 0 {
			continue
		}
		field := line[i+len(" qps="):]
		if j := strings.IndexByte(field, ' '); j >= 0 {
			field = field[:j]
		}
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		qps = v
	}
	if qps < 40 || qps > 160 {
		t.Errorf("paced run achieved %v QPS, want ≈100", qps)
	}
}
