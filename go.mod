module semilocal

go 1.22
