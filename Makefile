# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench figures figures-paper examples fuzz

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every figure of the paper at moderate sizes.
figures:
	go run ./cmd/benchsuite -scale default all

# Publication sizes (hours on small machines).
figures-paper:
	go run ./cmd/benchsuite -scale paper all

examples:
	go run ./examples/quickstart
	go run ./examples/approxmatch
	go run ./examples/genomes
	go run ./examples/timeseries
	go run ./examples/fuzzysearch

# Short fuzzing passes over the three fuzz targets.
fuzz:
	go test -fuzz FuzzKernelAgreement -fuzztime 30s ./internal/combing
	go test -fuzz FuzzBinaryScore -fuzztime 30s ./internal/bitlcs
	go test -fuzz FuzzMultiply -fuzztime 30s ./internal/steadyant
