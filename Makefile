# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race test-race check check-obs check-chaos check-stream check-multipat check-banded check-store check-server check-tune bench bench-smoke figures figures-paper examples fuzz fuzz-smoke

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Race-detector lane over the packages that spawn goroutines (Pool.For
# barriers, the recursive limiter, block-parallel bit operations) plus
# the oracle-driven differential tests that exercise them.
test-race:
	go test -race ./internal/...

# The full pre-merge gate: static checks, build, the whole test suite,
# and the race lane. CI runs exactly this.
check:
	go vet ./...
	go build ./...
	go test ./...
	$(MAKE) test-race

# Observability lane, focused: metrics/trace goldens, histogram and
# counter property tests, and the zero-alloc guards for disabled
# instrumentation (the alloc guards only compile without -race, so
# they run in `go test ./...` above but not in test-race). A strict
# subset of `check` — use for a fast loop while touching internal/obs.
check-obs:
	go test ./internal/obs ./internal/query ./internal/stats ./cmd/semilocal
	go test -race ./internal/obs ./internal/query ./internal/stats
	go test -run 'TestStageCoverage4096|TestSolveObservedMatchesSolve' ./internal/core

# Chaos lane: the fault-injection harness and the hardened serving
# path, under the race detector — deterministic-replay goldens, the
# metamorphic oracle-identity suite, retry/shed/degradation semantics,
# the goroutine-leak gates (TestShutdownNoLeaks and the abandoned-
# flight reap regression), and the parallel-runtime edge cases (nested
# For, panic propagation, limiter bounds). The zero-alloc guards for
# disabled chaos and the hardening knobs only compile without -race,
# so they run in a second, race-free pass. Well under 5 minutes.
check-chaos:
	go test -race ./internal/chaos ./internal/query ./internal/parallel ./internal/core ./cmd/semilocal
	go test -run 'ZeroAllocs|AllocParity' ./internal/query ./internal/core

# Streaming lane: the incremental-kernel subsystem end to end under
# the race detector — the differential bit-identity suite against
# from-scratch solves, the concurrent query-during-append soak, the
# chaos metamorphic cases, the steady-ant workspace, the engine
# wrapper's deadline/retry semantics, and the CLI -stream goldens. The
# zero-alloc guards for the append hot path (leaf merges in the
# retained arena) only compile without -race, so they run in a second,
# race-free pass.
check-stream:
	go test -race ./internal/stream ./internal/steadyant ./internal/query ./cmd/semilocal
	go test -run 'ZeroAllocs|Freelist|AllocParity' ./internal/stream ./internal/steadyant ./internal/query

# Multi-pattern streaming lane: the session-group subsystem end to end
# under the race detector — the group-differential wall (every pattern
# bit-identical to an independent session and a from-scratch solve
# across randomized chunkings and slides), the per-pattern composition
# bound, relabeling-class leaf sharing and its key-exactness table, the
# 8-goroutine concurrent-reader soak, the group chaos metamorphic
# cases, the engine wrapper's lockstep retry/deadline semantics, the
# /v1/stream group wire extension, and the CLI group-mode goldens. The
# steady-state group-append alloc guards only compile without -race, so
# they run in a second, race-free pass, followed by a fuzz smoke of the
# group target.
check-multipat:
	go test -race -run 'Group' ./internal/stream ./internal/query ./internal/server ./cmd/semilocal
	go test -run 'TestGroupScanZeroAllocs|TestGroupSteadyStateAppendAllocs' ./internal/stream
	go test -fuzz FuzzStreamGroup -fuzztime 10s ./internal/stream

# Banded fast-path lane: the differential wall (adversarial shapes,
# 500+ randomized cases, collision stress under forced hash seeds, the
# editdist cross-check, the DistanceAuto dispatch), the engine
# dispatcher's metamorphic and counter-reconciliation suites plus the
# mixed banded/kernel chaos soak under -race, the CLI flag-validation
# table and banded goldens, a race-free pass for the zero-alloc guards
# on the BFS hot loop and the routing probe, and a fuzz smoke of the
# banded-vs-oracle target.
check-banded:
	go test -race ./internal/banded ./internal/editdist ./internal/query ./cmd/semilocal
	go test -run 'ZeroAllocs' ./internal/banded
	go test -fuzz FuzzBandedDistance -fuzztime 10s ./internal/banded

# Persistent-store lane: the crash/corruption test wall of the on-disk
# kernel store (truncation at every byte boundary, exhaustive bit-flip
# detection, the all-configs differential pin of the content-only key),
# the engine integration suite (warm restart under solve-killing chaos,
# store-fault metamorphic degradation, the eviction-heavy concurrent
# soak) and the CLI -store-dir warm-restart test — all under -race —
# plus a race-free pass for the store alloc guards and kernel-codec
# edge tests, and a fuzz smoke of the log-recovery target.
check-store:
	go test -race ./internal/store ./internal/query ./cmd/semilocal
	go test -run 'TestStore|TestKernelIO' ./internal/store ./internal/query ./internal/core
	go test -fuzz FuzzStoreOpen -fuzztime 10s ./internal/store

# Serving-tier lane: the sharded HTTP serving tier end to end under
# the race detector — the differential wall (HTTP answers bit-identical
# to direct engine calls for every query family, including under
# benign chaos), the consistent-hash ring property tests (balance,
# minimal movement on add/remove), the shard-kill degradation drills,
# tenant-quota admission, the 8-client live-server soak with quiescent
# counter exactness, the CLI -serve-addr e2e and flag-rule tests, the
# loadgen harness smoke, and a fuzz smoke of the request decoder.
check-server:
	go test -race ./internal/server ./internal/query ./cmd/semilocal ./cmd/loadgen
	go test -fuzz FuzzServerRequest -fuzztime 10s ./internal/server

# Calibration lane: the autotuning subsystem end to end under the race
# detector — the grid-sweep differential wall (every tuning point the
# calibrator can assemble solves bit-identically to the untuned build
# and the quadratic oracle, including the fused bit-parallel schedule),
# the profile persistence property tests (round-trip, torn-tail,
# strict-decode rejection table, fallback counters), the real
# calibrator on the tiny CI grid, the recycled-buffer pool suite, the
# CLI -calibrate/-profile e2e and goldens against the checked-in
# fixture profile (no live full-grid calibration in CI), a race-free
# pass for the zero-alloc guards on the recycler and query hot paths,
# and a fuzz smoke of the profile loader.
check-tune:
	go test -race ./internal/tune ./internal/recycle ./internal/core ./internal/query ./cmd/semilocal
	go test -run 'ZeroAllocs' ./internal/recycle ./internal/query
	go test -fuzz FuzzProfileLoad -fuzztime 10s ./internal/tune

bench:
	go test -bench=. -benchmem ./...

# Benchmark regression lane: run every benchmark exactly once. This
# does not measure anything meaningful — it exists so CI catches
# benchmarks that stop compiling, panic, or start allocating where a
# hot path should not (inspect with -benchmem locally).
bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x ./...
	go run ./cmd/loadgen -shards 2 -clients 4 -duration 1s -hot 8 -size 128

# Regenerate every figure of the paper at moderate sizes.
figures:
	go run ./cmd/benchsuite -scale default all

# Publication sizes (hours on small machines).
figures-paper:
	go run ./cmd/benchsuite -scale paper all

examples:
	go run ./examples/quickstart
	go run ./examples/approxmatch
	go run ./examples/genomes
	go run ./examples/timeseries
	go run ./examples/fuzzysearch

# Short fuzzing passes over every fuzz target.
fuzz:
	go test -fuzz FuzzKernelAgreement -fuzztime 30s ./internal/combing
	go test -fuzz FuzzBinaryScore -fuzztime 30s ./internal/bitlcs
	go test -fuzz FuzzMultiply -fuzztime 30s ./internal/steadyant
	go test -fuzz FuzzDifferential -fuzztime 30s ./internal/core
	go test -fuzz FuzzEditWindows -fuzztime 30s ./internal/editdist
	go test -fuzz FuzzSessionQueries -fuzztime 30s ./internal/query
	go test -fuzz FuzzStreamAppend -fuzztime 30s ./internal/stream
	go test -fuzz FuzzStreamGroup -fuzztime 30s ./internal/stream
	go test -fuzz FuzzBandedDistance -fuzztime 30s ./internal/banded
	go test -fuzz FuzzKernelRoundtrip -fuzztime 30s ./internal/core
	go test -fuzz FuzzStoreOpen -fuzztime 30s ./internal/store
	go test -fuzz FuzzServerRequest -fuzztime 30s ./internal/server
	go test -fuzz FuzzProfileLoad -fuzztime 30s ./internal/tune

# Ten-second smoke pass per target — quick enough for CI, long enough to
# mutate beyond the checked-in seed corpora under testdata/fuzz.
fuzz-smoke:
	go test -fuzz FuzzKernelAgreement -fuzztime 10s ./internal/combing
	go test -fuzz FuzzBinaryScore -fuzztime 10s ./internal/bitlcs
	go test -fuzz FuzzMultiply -fuzztime 10s ./internal/steadyant
	go test -fuzz FuzzDifferential -fuzztime 10s ./internal/core
	go test -fuzz FuzzEditWindows -fuzztime 10s ./internal/editdist
	go test -fuzz FuzzSessionQueries -fuzztime 10s ./internal/query
	go test -fuzz FuzzStreamAppend -fuzztime 10s ./internal/stream
	go test -fuzz FuzzStreamGroup -fuzztime 10s ./internal/stream
	go test -fuzz FuzzBandedDistance -fuzztime 10s ./internal/banded
	go test -fuzz FuzzKernelRoundtrip -fuzztime 10s ./internal/core
	go test -fuzz FuzzStoreOpen -fuzztime 10s ./internal/store
	go test -fuzz FuzzServerRequest -fuzztime 10s ./internal/server
	go test -fuzz FuzzProfileLoad -fuzztime 10s ./internal/tune
